// Microbenchmarks for the hot paths: Neuk kernel-matrix construction and
// backward pass, dense matmul/Cholesky, GP fit step, per-point vs batched GP
// prediction, MACE proposal generation, MNA circuit evaluation and NSGA-II.
//
// Usage:
//   micro_perf             human-readable table
//   micro_perf --json      also writes BENCH_micro_perf.json (machine
//                          readable; later PRs diff it for perf trajectory)
//
// The batched-prediction entries report the headline number for this
// harness: `gp_predict_batch` must stay >= 2x faster than the per-point
// loop (`speedup` field in the JSON).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "linalg/lu.hpp"

#include "bo/drivers.hpp"
#include "bo/mace.hpp"
#include "bo/surrogate.hpp"
#include "circuits/factory.hpp"
#include "gp/gp.hpp"
#include "kernel/neuk.hpp"
#include "linalg/cholesky.hpp"
#include "moo/nsga2.hpp"
#include "netlist/netlist_circuit.hpp"
#include "obs/journal.hpp"
#include "obs/obs.hpp"
#include "sim/transient.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

#ifndef KATO_SOURCE_DIR
#define KATO_SOURCE_DIR "."
#endif

using namespace kato;

namespace {

struct BenchResult {
  std::string name;
  double ms_per_iter = 0.0;
  std::size_t iterations = 0;
};

std::vector<BenchResult> g_results;

/// Run fn repeatedly until ~min_total_ms of wall clock is spent (at least
/// twice), then record the mean per-iteration time.
template <typename Fn>
double bench(const std::string& name, Fn&& fn, double min_total_ms = 300.0) {
  using clock = std::chrono::steady_clock;
  fn();  // warm-up (excluded)
  std::size_t iters = 0;
  const auto start = clock::now();
  double elapsed_ms = 0.0;
  while (elapsed_ms < min_total_ms || iters < 2) {
    fn();
    ++iters;
    elapsed_ms = std::chrono::duration<double, std::milli>(clock::now() - start)
                     .count();
  }
  const double per_iter = elapsed_ms / static_cast<double>(iters);
  g_results.push_back({name, per_iter, iters});
  std::cout << "  " << name << ": " << per_iter << " ms/iter (" << iters
            << " iters)\n";
  return per_iter;
}

/// A/B arms timed as the minimum over interleaved windows: the min is the
/// standard noise-robust per-iteration estimator, and alternating the arms
/// means any neighbor load hits both equally instead of whichever arm
/// happened to run during the spike.  The floored ratio then tracks the
/// code, not the runner.
template <typename FnA, typename FnB>
std::pair<double, double> bench_ab(const std::string& name_a, FnA&& fn_a,
                                   const std::string& name_b, FnB&& fn_b) {
  using clock = std::chrono::steady_clock;
  constexpr int n_windows = 8;
  constexpr double window_ms = 40.0;
  double best_a = 0.0;
  double best_b = 0.0;
  std::size_t iters_a = 0;
  std::size_t iters_b = 0;
  fn_a();
  fn_b();  // warm-up (excluded)
  for (int w = 0; w < n_windows; ++w) {
    for (int arm = 0; arm < 2; ++arm) {
      std::size_t iters = 0;
      const auto start = clock::now();
      double ms = 0.0;
      while (ms < window_ms || iters < 2) {
        arm == 0 ? fn_a() : fn_b();
        ++iters;
        ms = std::chrono::duration<double, std::milli>(clock::now() - start)
                 .count();
      }
      const double per = ms / static_cast<double>(iters);
      auto& best = arm == 0 ? best_a : best_b;
      auto& total = arm == 0 ? iters_a : iters_b;
      if (best == 0.0 || per < best) best = per;
      total += iters;
    }
  }
  g_results.push_back({name_a, best_a, iters_a});
  g_results.push_back({name_b, best_b, iters_b});
  std::cout << "  " << name_a << ": " << best_a << " ms/iter (" << iters_a
            << " iters, min of " << n_windows << " interleaved windows)\n";
  std::cout << "  " << name_b << ": " << best_b << " ms/iter (" << iters_b
            << " iters, min of " << n_windows << " interleaved windows)\n";
  return {best_a, best_b};
}

la::Matrix random_points(std::size_t n, std::size_t d, std::uint64_t seed) {
  util::Rng rng(seed);
  la::Matrix x(n, d);
  for (auto& v : x.data()) v = rng.uniform();
  return x;
}

volatile double g_sink = 0.0;

void sink(double v) { g_sink = g_sink + v; }

gp::GaussianProcess make_fitted_gp(std::size_t n, std::size_t d,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  kern::NeukConfig cfg;
  gp::GaussianProcess model(std::make_unique<kern::NeukKernel>(d, cfg, rng));
  const auto x = random_points(n, d, seed + 1);
  la::Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = std::sin(3.0 * x(i, 0)) + x(i, 1);
  model.set_data(x, y);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) json = true;

  std::cout << "== micro_perf (KATO_THREADS=" << util::thread_count()
            << ") ==\n";

  // Kernel construction / backward.
  {
    util::Rng rng(1);
    kern::NeukConfig cfg;
    kern::NeukKernel k(8, cfg, rng);
    const auto x = random_points(128, 8, 2);
    bench("neuk_matrix_n128", [&] { sink(k.matrix(x)(0, 0)); });
    la::Matrix dk(128, 128, 1.0);
    std::vector<double> grad(k.n_params());
    bench("neuk_backward_n128", [&] {
      std::fill(grad.begin(), grad.end(), 0.0);
      k.backward(x, dk, grad);
      sink(grad[0]);
    });
  }

  // Dense linear algebra.
  {
    const auto a = random_points(256, 256, 3);
    const auto b = random_points(256, 256, 4);
    bench("matmul_256", [&] { sink(la::matmul(a, b)(0, 0)); });
    la::Matrix spd = la::matmul_nt(a, a);
    for (std::size_t i = 0; i < spd.rows(); ++i) spd(i, i) += 256.0;
    bench("cholesky_256", [&] { sink((*la::cholesky(spd))(0, 0)); });
  }

  // GP fit step.
  {
    auto model = make_fitted_gp(256, 8, 5);
    util::Rng rng(6);
    gp::GpFitOptions opts;
    opts.iterations = 1;
    bench("gp_fit_step_n256", [&] {
      model.fit(opts, rng);
      sink(model.noise_var());
    });
  }

  // GP training loop: the pre-PR reference path (per-entry kernel forward +
  // backward, dense 2n^3-flop inverse) vs the fused workspace path.  Each
  // rep copies the model so every fit starts from identical hyperparameters.
  // Pinned to one thread so gp_fit_speedup tracks the fusion win alone
  // (the reference branch is single-threaded by construction; letting the
  // fused branch use the pool would conflate fusion with core count).
  double fit_ref_ms = 0.0;
  double fit_ws_ms = 0.0;
  {
    const auto model = make_fitted_gp(192, 8, 21);
    gp::GpFitOptions ref;
    ref.iterations = 12;
    ref.use_workspace = false;
    gp::GpFitOptions fused = ref;
    fused.use_workspace = true;
    const char* prev_threads = std::getenv("KATO_THREADS");
    const std::string saved = prev_threads ? prev_threads : "";
    setenv("KATO_THREADS", "1", 1);
    fit_ref_ms = bench(
        "gp_fit_ref_n192x12",
        [&] {
          auto m = model;
          util::Rng rng(22);
          m.fit(ref, rng);
          sink(m.noise_var());
        },
        800.0);
    fit_ws_ms = bench(
        "gp_fit_fused_n192x12",
        [&] {
          auto m = model;
          util::Rng rng(22);
          m.fit(fused, rng);
          sink(m.noise_var());
        },
        800.0);
    if (prev_threads)
      setenv("KATO_THREADS", saved.c_str(), 1);
    else
      unsetenv("KATO_THREADS");
    std::cout << "  -> fused fit speedup: " << fit_ref_ms / fit_ws_ms << "x\n";
  }

  // Multi-metric training: per-metric GPs fitted concurrently on the
  // persistent pool (pre-PR trained them strictly one after another).
  double multi_serial_ms = 0.0;
  double multi_par_ms = 0.0;
  {
    const std::size_t n = 160;
    const std::size_t d = 8;
    const std::size_t metrics = 4;
    util::Rng rng(23);
    gp::MultiGp multi(metrics, [&] {
      kern::NeukConfig cfg;
      return std::make_unique<kern::NeukKernel>(d, cfg, rng);
    });
    const auto x = random_points(n, d, 24);
    la::Matrix y(n, metrics);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t m = 0; m < metrics; ++m)
        y(i, m) = std::sin(3.0 * x(i, 0) + static_cast<double>(m)) + x(i, 1);
    multi.set_data(x, y);
    gp::GpFitOptions opts;
    opts.iterations = 6;
    const char* prev_threads = std::getenv("KATO_THREADS");
    const std::string saved = prev_threads ? prev_threads : "";
    setenv("KATO_THREADS", "1", 1);
    multi_serial_ms = bench("multigp_fit_m4_threads1", [&] {
      auto m = multi;
      util::Rng fit_rng(25);
      m.fit(opts, fit_rng);
      sink(m.metric(0).noise_var());
    });
    setenv("KATO_THREADS", "4", 1);
    multi_par_ms = bench("multigp_fit_m4_threads4", [&] {
      auto m = multi;
      util::Rng fit_rng(25);
      m.fit(opts, fit_rng);
      sink(m.metric(0).noise_var());
    });
    if (prev_threads)
      setenv("KATO_THREADS", saved.c_str(), 1);
    else
      unsetenv("KATO_THREADS");
    std::cout << "  -> multigp pool speedup: " << multi_serial_ms / multi_par_ms
              << "x\n";
  }

  // Per-point vs batched prediction: the ratio is the headline number.
  double loop_ms = 0.0;
  double batch_ms = 0.0;
  {
    const std::size_t n_queries = 64;
    auto model = make_fitted_gp(512, 8, 7);
    const auto q = random_points(n_queries, 8, 8);
    loop_ms = bench("gp_predict_loop_n512_q64", [&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < n_queries; ++i)
        acc += model.predict(q.row(i)).mean;
      sink(acc);
    });
    batch_ms = bench("gp_predict_batch_n512_q64", [&] {
      const auto preds = model.predict_batch(q);
      sink(preds.front().mean);
    });
    std::cout << "  -> batched speedup: " << loop_ms / batch_ms << "x\n";
  }

  // MACE proposal generation over a fitted surrogate (the BO inner loop).
  {
    util::Rng rng(9);
    gp::GpFitOptions fit{20, 0.05, 192, 1e-6};
    bo::GpSurrogate surr(8, 2, bo::KernelKind::neuk, fit, fit, rng);
    const auto x = random_points(96, 8, 10);
    la::Matrix y(96, 2);
    for (std::size_t i = 0; i < 96; ++i) {
      y(i, 0) = std::sin(3.0 * x(i, 0));
      y(i, 1) = x(i, 1);
    }
    surr.refit(x, y, rng);
    std::vector<ckt::MetricSpec> specs{{"c0", "", 0.5, true}};
    bo::MaceOptions opts;
    opts.nsga.population = 24;
    opts.nsga.generations = 8;
    bench("mace_proposals_n96", [&] {
      util::Rng inner(11);
      sink(static_cast<double>(
          bo::mace_proposals(surr, specs, 0.1, opts, inner, {}).x.size()));
    });
  }

  // Circuit evaluation.  dc_opamp2_eval runs the default (table) device
  // path; the _analytic row re-runs it with KATO_DEVICE_TABLE=0 for the
  // same-binary e2e A/B (the whole-candidate ratio is Amdahl-limited by the
  // AC sweep and the LU solves — the device-kernel ratio itself is
  // abl_mos_eval below).
  double dc_opamp2_ms = 0.0;
  double dc_opamp2_analytic_ms = 0.0;
  {
    auto circuit = ckt::make_circuit("opamp2", "180nm");
    const auto x = circuit->expert_design();
    dc_opamp2_ms = bench("dc_opamp2_eval", [&] {
      const auto m = circuit->evaluate(x);
      sink(m ? (*m)[0] : 0.0);
    });
    const char* prev_table = std::getenv("KATO_DEVICE_TABLE");
    const std::string saved_table = prev_table ? prev_table : "";
    setenv("KATO_DEVICE_TABLE", "0", 1);
    dc_opamp2_analytic_ms = bench("dc_opamp2_eval_analytic", [&] {
      const auto m = circuit->evaluate(x);
      sink(m ? (*m)[0] : 0.0);
    });
    if (prev_table)
      setenv("KATO_DEVICE_TABLE", saved_table.c_str(), 1);
    else
      unsetenv("KATO_DEVICE_TABLE");
    auto bandgap = ckt::make_circuit("bandgap", "180nm");
    const auto xb = bandgap->expert_design();
    bench("bandgap_eval", [&] {
      const auto m = bandgap->evaluate(xb);
      sink(m ? (*m)[0] : 0.0);
    });
  }

  // Device-model kernel (abl_mos_eval): 512 mixed NMOS/PMOS devices across
  // the sizing box on a handful of bias rails, the same device/bias mix the
  // transient Newton loop sees per timestep and evaluate_batch sees across
  // candidates.  Two granularities, same binary:
  //
  //   abl_mos_eval_{analytic,table}      the SoA device-model batch alone
  //                                      (MosPre in, ids/gm/gds out) — the
  //                                      transcendental work the table
  //                                      replaces; their ratio is
  //                                      device_table_speedup, floored at
  //                                      3x by bench/compare_baseline.py.
  //   abl_mos_assemble_{analytic,table}  the full MnaAssembler::assemble()
  //                                      on the same circuit — device model
  //                                      plus the path-independent stamp
  //                                      writes and KCL gathers, so the
  //                                      ratio is diluted by design.
  double mos_eval_table_ms = 0.0;
  double mos_eval_analytic_ms = 0.0;
  double mos_assemble_table_ms = 0.0;
  double mos_assemble_analytic_ms = 0.0;
  {
    sim::Circuit devckt;
    const int vdd = devckt.new_node("vdd");
    const int na = devckt.new_node("a");
    const int nb = devckt.new_node("b");
    const int nc = devckt.new_node("c");
    devckt.add_vsource(vdd, sim::Circuit::ground, 1.8);
    devckt.add_resistor(na, sim::Circuit::ground, 10e3);
    devckt.add_resistor(nb, sim::Circuit::ground, 10e3);
    devckt.add_resistor(nc, vdd, 10e3);
    const auto& pdk = ckt::pdk_180nm();
    const int rails[] = {sim::Circuit::ground, vdd, na, nb, nc};
    util::Rng dev_rng(41);
    for (int i = 0; i < 512; ++i) {
      const bool nmos = (i % 2) == 0;
      const int d = rails[(i + 1) % 5];
      const int g = rails[(i * 3 + 2) % 5];
      const int s = nmos ? sim::Circuit::ground : vdd;
      const double w = 2e-6 + 18e-6 * dev_rng.uniform();
      const double l = 0.18e-6 + 0.8e-6 * dev_rng.uniform();
      devckt.add_mosfet(d, g, s, w, l, nmos ? pdk.nmos : pdk.pmos);
    }
    la::Vector xdev(devckt.mna_size(), 0.0);
    xdev[static_cast<std::size_t>(vdd) - 1] = 1.8;
    xdev[static_cast<std::size_t>(na) - 1] = 0.45;   // weak inversion-ish
    xdev[static_cast<std::size_t>(nb) - 1] = 0.95;   // strong inversion
    xdev[static_cast<std::size_t>(nc) - 1] = 1.35;   // triode/reverse mix
    la::Matrix jac_dev;
    la::Vector res_dev;
    sim::MnaAssembler analytic_asm(
        devckt, sim::MnaOptions{1e-12, 300.0, sim::MnaSolver::dense,
                                sim::DeviceEval::analytic});
    sim::MnaAssembler table_asm(
        devckt, sim::MnaOptions{1e-12, 300.0, sim::MnaSolver::dense,
                                sim::DeviceEval::table});
    // (a) SoA device-model batch: precomputed MosPre / table pointers /
    // terminal biases in, ids/gm/gds out.
    std::vector<sim::MosPre> pres;
    std::vector<const sim::DeviceTable*> tabs;
    std::vector<std::shared_ptr<const sim::DeviceTable>> tab_refs;
    std::vector<double> vgs_b, vds_b;
    auto at = [&](int node) {
      return node == 0 ? 0.0 : xdev[static_cast<std::size_t>(node) - 1];
    };
    for (const auto& m : devckt.mosfets()) {
      pres.push_back(sim::mos_precompute(m.model, m.w, m.l, 300.0));
      tab_refs.push_back(
          sim::device_table_for(m.model.subthreshold_n, 300.0));
      tabs.push_back(tab_refs.back().get());
      vgs_b.push_back(at(m.g) - at(m.s));
      vds_b.push_back(at(m.d) - at(m.s));
    }
    const std::size_t n_dev = pres.size();
    auto eval_analytic = [&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < n_dev; ++i) {
        const auto op = sim::eval_mosfet_pre(pres[i], vgs_b[i], vds_b[i]);
        acc += op.ids + op.gm + op.gds;
      }
      sink(acc);
    };
    auto eval_table = [&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < n_dev; ++i) {
        const auto op =
            sim::eval_mosfet_table(*tabs[i], pres[i], vgs_b[i], vds_b[i]);
        acc += op.ids + op.gm + op.gds;
      }
      sink(acc);
    };
    std::tie(mos_eval_analytic_ms, mos_eval_table_ms) = bench_ab(
        "abl_mos_eval_analytic", eval_analytic, "abl_mos_eval_table",
        eval_table);
    std::cout << "  -> device table speedup: "
              << mos_eval_analytic_ms / mos_eval_table_ms << "x (512 devices)\n";

    // (b) Full assembly on the same circuit.
    std::tie(mos_assemble_analytic_ms, mos_assemble_table_ms) = bench_ab(
        "abl_mos_assemble_analytic",
        [&] {
          analytic_asm.assemble(xdev, jac_dev, res_dev);
          sink(res_dev[0]);
        },
        "abl_mos_assemble_table",
        [&] {
          table_asm.assemble(xdev, jac_dev, res_dev);
          sink(res_dev[0]);
        });
    std::cout << "  -> assembled speedup: "
              << mos_assemble_analytic_ms / mos_assemble_table_ms << "x\n";
  }

  // Netlist front-end (abl_netlist): one-time deck parse latency and the
  // per-candidate re-elaboration cost the sizing loop pays on top of each
  // simulation (compare abl_netlist_eval against dc_opamp2_eval above).
  double netlist_elab_ms = 0.0;
  {
    const std::string path =
        std::string(KATO_SOURCE_DIR) + "/circuits/netlists/opamp2.cir";
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();
    bench("abl_netlist_parse", [&] {
      sink(static_cast<double>(
          net::parse_netlist(text, "opamp2.cir").cards.size()));
    });
    ckt::NetlistCircuit circuit(net::parse_netlist(text, "opamp2.cir"),
                                ckt::pdk_180nm());
    const auto x = circuit.expert_design();
    netlist_elab_ms = bench("abl_netlist_elaborate", [&] {
      sink(static_cast<double>(circuit.elaborate(x).circuit.mna_size()));
    });
    bench("abl_netlist_eval", [&] {
      const auto m = circuit.evaluate(x);
      sink(m ? (*m)[0] : 0.0);
    });
  }

  // Corner/MC fan-out (abl_corner): one aggregated candidate on the
  // 3-corner x 8-sample opamp2 variant — 24 elaborate+DC+AC sims plus the
  // quantile/worst aggregation, the per-candidate cost robust decks pay
  // (compare against abl_netlist_eval for the x24 overhead).
  double corner_eval_ms = 0.0;
  {
    const std::string path =
        std::string(KATO_SOURCE_DIR) + "/circuits/netlists/opamp2_corners.cir";
    ckt::NetlistCircuit circuit(net::parse_netlist_file(path),
                                ckt::pdk_180nm());
    const auto x = circuit.expert_design();
    corner_eval_ms = bench("abl_corner_eval", [&] {
      const auto m = circuit.evaluate(x);
      sink(m ? (*m)[0] : 0.0);
    });
    std::cout << "  -> conditions per candidate: "
              << circuit.n_corners() * circuit.n_mc_samples() << "\n";
  }

  // Transient engine (abl_tran): per-timestep cost of the Newton + LTE
  // machinery on the step-buffer workload, and the full DC -> TRAN ->
  // measures evaluation the transient sizing loop pays per candidate.
  double tran_step_ms = 0.0;
  double tran_eval_ms = 0.0;
  double tran_eval_analytic_ms = 0.0;
  double tran_eval_traced_ms = 0.0;
  double trace_overhead_ratio = 0.0;
  {
    const std::string path =
        std::string(KATO_SOURCE_DIR) + "/circuits/netlists/buffer_tran.cir";
    ckt::NetlistCircuit circuit(net::parse_netlist_file(path),
                                ckt::pdk_180nm());
    const auto x = circuit.expert_design();
    const auto elab = circuit.elaborate(x);
    constexpr std::size_t n_steps = 256;
    sim::TranOptions topts;
    topts.tstop = 3e-6;
    topts.tstep = topts.tstop / static_cast<double>(n_steps);
    topts.fixed_step = true;
    // Pre-solve the t=0 operating point so every benched iteration reuses
    // it (the buffer's waveform t=0 value equals its DC value) and the
    // per-timestep number tracks only the Newton + companion stepping.
    const auto op = sim::solve_dc(elab.circuit);
    const double tran_ms = bench("abl_tran_step", [&] {
      const auto res = sim::solve_tran(elab.circuit, topts, &op);
      sink(res.ok ? res.time.back() : 0.0);
    });
    tran_step_ms = tran_ms / static_cast<double>(n_steps);
    std::cout << "  -> per-timestep cost: " << tran_step_ms * 1e3 << " us\n";
    tran_eval_ms = bench("abl_tran_eval", [&] {
      const auto m = circuit.evaluate(x);
      sink(m ? (*m)[0] : 0.0);
    });
    // e2e device-path A/B on the transient workload (KATO_DEVICE_TABLE,
    // same binary) — Amdahl-limited by LU + timestep control, so this ratio
    // is modest by design; the kernel ratio is device_table_speedup.
    const char* prev_table = std::getenv("KATO_DEVICE_TABLE");
    const std::string saved_table = prev_table ? prev_table : "";
    setenv("KATO_DEVICE_TABLE", "0", 1);
    tran_eval_analytic_ms = bench("abl_tran_eval_analytic", [&] {
      const auto m = circuit.evaluate(x);
      sink(m ? (*m)[0] : 0.0);
    });
    if (prev_table)
      setenv("KATO_DEVICE_TABLE", saved_table.c_str(), 1);
    else
      unsetenv("KATO_DEVICE_TABLE");

    // Tracing overhead (abl_tran_eval_traced): the identical evaluation
    // with an active KATO_TRACE session — spans plus the per-timestep
    // ticker, the densest instrumentation in the stack.  One session spans
    // both arms, paused for the untraced one, so both share buffers and the
    // ratio isolates the capture cost.
    //
    // The arms alternate every single iteration (not in 40 ms bench_ab
    // windows): the effect being gated is a few percent, smaller than the
    // frequency drift between two windows, so only pairing at iteration
    // granularity makes the noise common-mode.  The gated ratio is the
    // median of per-block paired ratios — the median rejects the occasional
    // scheduler preemption that lands inside one block.  compare_baseline.py
    // gates the ratio at <= 1.05.
    obs::trace_begin("BENCH_trace_tran.json");
    obs::trace_pause();
    const auto run_untraced = [&] {
      const auto m = circuit.evaluate(x);
      sink(m ? (*m)[0] : 0.0);
    };
    const auto run_traced = [&] {
      obs::trace_resume();
      const auto m = circuit.evaluate(x);
      obs::trace_pause();
      sink(m ? (*m)[0] : 0.0);
    };
    run_untraced();
    run_traced();  // warm-up (excluded)
    using clock = std::chrono::steady_clock;
    constexpr int n_blocks = 12;
    constexpr int block_pairs = 48;
    std::vector<double> block_ratios;
    double best_untraced = 0.0;
    double best_traced = 0.0;
    for (int blk = 0; blk < n_blocks; ++blk) {
      double ms_untraced = 0.0;
      double ms_traced = 0.0;
      for (int i = 0; i < block_pairs; ++i) {
        const auto t0 = clock::now();
        run_untraced();
        const auto t1 = clock::now();
        run_traced();
        const auto t2 = clock::now();
        ms_untraced +=
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        ms_traced +=
            std::chrono::duration<double, std::milli>(t2 - t1).count();
      }
      const double per_untraced = ms_untraced / block_pairs;
      const double per_traced = ms_traced / block_pairs;
      if (best_untraced == 0.0 || per_untraced < best_untraced)
        best_untraced = per_untraced;
      if (best_traced == 0.0 || per_traced < best_traced)
        best_traced = per_traced;
      if (ms_untraced > 0.0) block_ratios.push_back(ms_traced / ms_untraced);
    }
    const std::size_t trace_events = obs::trace_end();
    tran_eval_traced_ms = best_traced;
    constexpr std::size_t ab_iters = n_blocks * block_pairs;
    g_results.push_back({"abl_tran_eval_untraced", best_untraced, ab_iters});
    g_results.push_back({"abl_tran_eval_traced", best_traced, ab_iters});
    std::sort(block_ratios.begin(), block_ratios.end());
    if (!block_ratios.empty()) {
      const std::size_t m = block_ratios.size() / 2;
      trace_overhead_ratio =
          block_ratios.size() % 2 != 0
              ? block_ratios[m]
              : 0.5 * (block_ratios[m - 1] + block_ratios[m]);
    }
    std::cout << "  " << "abl_tran_eval_untraced: " << best_untraced
              << " ms/iter (" << ab_iters << " iters, min of " << n_blocks
              << " paired blocks)\n";
    std::cout << "  " << "abl_tran_eval_traced: " << best_traced
              << " ms/iter (" << ab_iters << " iters, min of " << n_blocks
              << " paired blocks)\n";
    std::cout << "  -> trace overhead ratio: " << trace_overhead_ratio
              << " (median of " << block_ratios.size() << " paired blocks, "
              << trace_events << " events captured)\n";
  }

  // Run-journal overhead (abl_bo_journal): the same short seeded BO run
  // with a KATO_RUN_LOG session on vs off.  The journal emits per
  // iteration, not per evaluation, so the right denominator is a whole
  // optimization run — DOE, GP refits, proposals and the JSONL emission all
  // inside the timed region — on the transient deck, where evaluation cost
  // dominates the loop the way real SPICE workloads do (on the AC-only
  // opamp2 deck the run is so cheap that the ratio mostly measures the
  // filesystem's flush latency, not the journaling code).  Same estimator
  // as the trace A/B above: arms alternate per iteration so frequency
  // drift is common-mode, and the gated number is the median of per-block
  // paired ratios (journal_overhead_ratio <= 1.05 in compare_baseline.py).
  double bo_journal_off_ms = 0.0;
  double bo_journal_on_ms = 0.0;
  double journal_overhead_ratio = 0.0;
  {
    const std::string path =
        std::string(KATO_SOURCE_DIR) + "/circuits/netlists/buffer_tran.cir";
    ckt::NetlistCircuit circuit(net::parse_netlist_file(path),
                                ckt::pdk_180nm());
    bo::BoConfig cfg;
    cfg.n_init = 8;
    cfg.iterations = 2;
    cfg.batch = 2;
    cfg.nsga.population = 8;
    cfg.nsga.generations = 4;
    cfg.max_gp_points = 64;
    cfg.hyper_every = 2;
    cfg.gp_initial.iterations = 8;
    cfg.gp_refit.iterations = 4;
    const auto run_off = [&] {
      const auto r =
          bo::run_constrained(circuit, bo::ConstrainedMethod::kato, cfg, 7);
      sink(r.trace.back());
    };
    const auto run_on = [&] {
      // Session open/truncate and close are charged to the journaled arm:
      // a real KATO_RUN_LOG run pays them too.
      obs::journal_begin("BENCH_journal.jsonl");
      const auto r =
          bo::run_constrained(circuit, bo::ConstrainedMethod::kato, cfg, 7);
      obs::journal_end();
      sink(r.trace.back());
    };
    run_off();
    run_on();  // warm-up (excluded)
    using clock = std::chrono::steady_clock;
    constexpr int n_blocks = 8;
    constexpr int block_pairs = 4;
    std::vector<double> block_ratios;
    for (int blk = 0; blk < n_blocks; ++blk) {
      double ms_off = 0.0;
      double ms_on = 0.0;
      for (int i = 0; i < block_pairs; ++i) {
        const auto t0 = clock::now();
        run_off();
        const auto t1 = clock::now();
        run_on();
        const auto t2 = clock::now();
        ms_off += std::chrono::duration<double, std::milli>(t1 - t0).count();
        ms_on += std::chrono::duration<double, std::milli>(t2 - t1).count();
      }
      const double per_off = ms_off / block_pairs;
      const double per_on = ms_on / block_pairs;
      if (bo_journal_off_ms == 0.0 || per_off < bo_journal_off_ms)
        bo_journal_off_ms = per_off;
      if (bo_journal_on_ms == 0.0 || per_on < bo_journal_on_ms)
        bo_journal_on_ms = per_on;
      if (ms_off > 0.0) block_ratios.push_back(ms_on / ms_off);
    }
    constexpr std::size_t ab_iters = n_blocks * block_pairs;
    g_results.push_back({"abl_bo_journal_off", bo_journal_off_ms, ab_iters});
    g_results.push_back({"abl_bo_journal_on", bo_journal_on_ms, ab_iters});
    std::sort(block_ratios.begin(), block_ratios.end());
    if (!block_ratios.empty()) {
      const std::size_t m = block_ratios.size() / 2;
      journal_overhead_ratio =
          block_ratios.size() % 2 != 0
              ? block_ratios[m]
              : 0.5 * (block_ratios[m - 1] + block_ratios[m]);
    }
    std::cout << "  " << "abl_bo_journal_off: " << bo_journal_off_ms
              << " ms/run (" << ab_iters << " runs, min of " << n_blocks
              << " paired blocks)\n";
    std::cout << "  " << "abl_bo_journal_on: " << bo_journal_on_ms
              << " ms/run (" << ab_iters << " runs, min of " << n_blocks
              << " paired blocks)\n";
    std::cout << "  -> journal overhead ratio: " << journal_overhead_ratio
              << " (median of " << block_ratios.size()
              << " paired blocks)\n";
  }

  // Robustness-hook overhead (abl_eval_recovery): the fault-injection and
  // deadline checks sit inside the Newton and timestep loops, so their cost
  // when *idle* must be invisible.  One arm evaluates with everything
  // disarmed (the shipping default: every check is a single predicated
  // relaxed load); the other arm evaluates with a never-firing fault armed
  // on the transient Newton site and a far-future deadline armed, paying
  // the splitmix64 draw and amortized clock reads without ever triggering
  // recovery.  Same paired-iteration estimator as the trace A/B; the gated
  // number is recovery_off_overhead_ratio <= 1.05 in compare_baseline.py.
  double eval_recovery_off_ms = 0.0;
  double eval_recovery_armed_ms = 0.0;
  double recovery_off_overhead_ratio = 0.0;
  {
    const std::string path =
        std::string(KATO_SOURCE_DIR) + "/circuits/netlists/buffer_tran.cir";
    ckt::NetlistCircuit circuit(net::parse_netlist_file(path),
                                ckt::pdk_180nm());
    const auto x = circuit.expert_design();
    util::FaultSpec idle_fault;
    idle_fault.site = util::FaultSite::tran_nan_device;
    idle_fault.rate = 1e-15;  // draws are paid, the fault never fires
    idle_fault.seed = 1;
    const auto run_off = [&] {
      const auto m = circuit.evaluate(x);
      sink(m ? (*m)[0] : 0.0);
    };
    const auto run_armed = [&] {
      util::set_fault(idle_fault);
      util::set_eval_deadline_ms(600000);
      const auto m = circuit.evaluate(x);
      util::set_eval_deadline_ms(0);
      util::set_fault(std::nullopt);
      sink(m ? (*m)[0] : 0.0);
    };
    run_off();
    run_armed();  // warm-up (excluded)
    using clock = std::chrono::steady_clock;
    constexpr int n_blocks = 12;
    constexpr int block_pairs = 48;
    std::vector<double> block_ratios;
    for (int blk = 0; blk < n_blocks; ++blk) {
      double ms_off = 0.0;
      double ms_armed = 0.0;
      for (int i = 0; i < block_pairs; ++i) {
        const auto t0 = clock::now();
        run_off();
        const auto t1 = clock::now();
        run_armed();
        const auto t2 = clock::now();
        ms_off += std::chrono::duration<double, std::milli>(t1 - t0).count();
        ms_armed += std::chrono::duration<double, std::milli>(t2 - t1).count();
      }
      const double per_off = ms_off / block_pairs;
      const double per_armed = ms_armed / block_pairs;
      if (eval_recovery_off_ms == 0.0 || per_off < eval_recovery_off_ms)
        eval_recovery_off_ms = per_off;
      if (eval_recovery_armed_ms == 0.0 || per_armed < eval_recovery_armed_ms)
        eval_recovery_armed_ms = per_armed;
      if (ms_off > 0.0) block_ratios.push_back(ms_armed / ms_off);
    }
    constexpr std::size_t ab_iters = n_blocks * block_pairs;
    g_results.push_back(
        {"abl_eval_recovery_off", eval_recovery_off_ms, ab_iters});
    g_results.push_back(
        {"abl_eval_recovery_armed", eval_recovery_armed_ms, ab_iters});
    std::sort(block_ratios.begin(), block_ratios.end());
    if (!block_ratios.empty()) {
      const std::size_t m = block_ratios.size() / 2;
      recovery_off_overhead_ratio =
          block_ratios.size() % 2 != 0
              ? block_ratios[m]
              : 0.5 * (block_ratios[m - 1] + block_ratios[m]);
    }
    std::cout << "  " << "abl_eval_recovery_off: " << eval_recovery_off_ms
              << " ms/iter (" << ab_iters << " iters, min of " << n_blocks
              << " paired blocks)\n";
    std::cout << "  " << "abl_eval_recovery_armed: " << eval_recovery_armed_ms
              << " ms/iter (" << ab_iters << " iters, min of " << n_blocks
              << " paired blocks)\n";
    std::cout << "  -> recovery-hook idle overhead ratio: "
              << recovery_off_overhead_ratio << " (median of "
              << block_ratios.size() << " paired blocks)\n";
  }

  // Sparse MNA solver (abl_sparse): on the ~150-node ladder deck, compare
  // (a) the raw linear-solve kernel — dense in-place LU vs sparse numeric
  // refactorization with the recorded pivot sequence — and (b) the full
  // transient candidate evaluation on both solve paths (KATO_SPARSE A/B).
  double sparse_lu_ms = 0.0;
  double sparse_lu_dense_ms = 0.0;
  double sparse_tran_ms = 0.0;
  double sparse_tran_dense_ms = 0.0;
  double eval_batch_speedup = 0.0;
  {
    const std::string path =
        std::string(KATO_SOURCE_DIR) + "/circuits/netlists/ladder.cir";
    ckt::NetlistCircuit circuit(net::parse_netlist_file(path),
                                ckt::pdk_180nm());
    const auto x = circuit.expert_design();
    const auto elab = circuit.elaborate(x);
    const std::size_t size = elab.circuit.mna_size();

    // (a) Linear-solve kernel on the DC Jacobian at the operating point.
    const auto op = sim::solve_dc(elab.circuit);
    la::Vector xop(size, 0.0);
    for (std::size_t i = 0; i + 1 < elab.circuit.n_nodes(); ++i)
      xop[i] = op.node_voltage[i + 1];
    for (std::size_t k = 0; k < elab.circuit.vsources().size(); ++k)
      xop[elab.circuit.n_nodes() - 1 + k] = op.vsource_current[k];
    sim::MnaAssembler assembler(elab.circuit, 1e-12, 300.0);
    la::Matrix jac;
    la::Vector res;
    assembler.assemble(xop, jac, res);

    std::vector<la::Coord> coords;
    for (std::size_t r = 0; r < size; ++r)
      for (std::size_t c = 0; c < size; ++c)
        if (jac(r, c) != 0.0) coords.push_back({r, c});
    const la::SparsePattern pattern(size, coords);
    std::vector<double> vals(pattern.nnz());
    for (std::size_t s = 0; s < coords.size(); ++s)
      vals[pattern.slot(coords[s].r, coords[s].c)] = jac(coords[s].r, coords[s].c);
    la::SparseLu lu;
    lu.analyze(pattern);
    lu.factor(vals);  // pivot + record symbolic structure (excluded)
    la::Vector sol;
    sparse_lu_ms = bench("abl_sparse_lu", [&] {
      lu.factor(vals);  // in-place numeric refactorization
      lu.solve(res, sol);
      sink(sol[0]);
    });
    la::Matrix jac_ws;
    la::Vector res_ws;
    sparse_lu_dense_ms = bench("abl_sparse_lu_dense", [&] {
      jac_ws = jac;
      res_ws = res;
      la::lu_solve_into(jac_ws, res_ws, sol);
      sink(sol[0]);
    });
    std::cout << "  -> sparse lu speedup: " << sparse_lu_dense_ms / sparse_lu_ms
              << "x (nnz " << pattern.nnz() << " -> lu " << lu.lu_nnz()
              << ", n " << size << ")\n";

    // (b) Whole-candidate transient evaluation, sparse vs dense path.
    const char* prev_sparse = std::getenv("KATO_SPARSE");
    const std::string saved_sparse = prev_sparse ? prev_sparse : "";
    setenv("KATO_SPARSE", "1", 1);
    sparse_tran_ms = bench("abl_sparse_tran_eval", [&] {
      const auto m = circuit.evaluate(x);
      sink(m ? (*m)[0] : 0.0);
    });
    setenv("KATO_SPARSE", "0", 1);
    sparse_tran_dense_ms = bench(
        "abl_sparse_tran_eval_dense",
        [&] {
          const auto m = circuit.evaluate(x);
          sink(m ? (*m)[0] : 0.0);
        },
        600.0);
    if (prev_sparse)
      setenv("KATO_SPARSE", saved_sparse.c_str(), 1);
    else
      unsetenv("KATO_SPARSE");
    std::cout << "  -> sparse tran eval speedup: "
              << sparse_tran_dense_ms / sparse_tran_ms << "x\n";

    // Batch evaluation: 8 deterministic candidates around the expert point,
    // serial loop at 1 thread vs evaluate_batch on the 4-thread pool.
    util::Rng cand_rng(31);
    std::vector<std::vector<double>> cands;
    for (int c = 0; c < 8; ++c) {
      auto cx = x;
      for (auto& v : cx)
        v = std::clamp(v + 0.1 * (cand_rng.uniform() - 0.5), 0.0, 1.0);
      cands.push_back(std::move(cx));
    }
    const char* prev_threads = std::getenv("KATO_THREADS");
    const std::string saved_threads = prev_threads ? prev_threads : "";
    setenv("KATO_THREADS", "1", 1);
    const double batch_serial_ms = bench(
        "eval_batch_serial_q8",
        [&] {
          double acc = 0.0;
          for (const auto& cand : cands) {
            const auto m = circuit.evaluate(cand);
            acc += m ? (*m)[0] : 0.0;
          }
          sink(acc);
        },
        600.0);
    setenv("KATO_THREADS", "4", 1);
    const double batch_par_ms = bench(
        "eval_batch_threads4_q8",
        [&] {
          const auto ms = circuit.evaluate_batch(cands);
          sink(ms[0] ? (*ms[0])[0] : 0.0);
        },
        600.0);
    if (prev_threads)
      setenv("KATO_THREADS", saved_threads.c_str(), 1);
    else
      unsetenv("KATO_THREADS");
    eval_batch_speedup = batch_serial_ms / batch_par_ms;
    std::cout << "  -> eval batch speedup (4 threads): " << eval_batch_speedup
              << "x\n";
  }

  // NSGA-II on an analytic problem (no surrogate cost).
  {
    auto fn = [](const std::vector<double>& x) {
      double g = 0.0;
      for (std::size_t i = 1; i < x.size(); ++i) g += x[i];
      return std::vector<double>{x[0], 1.0 + g - std::sqrt(x[0] / (1.0 + g))};
    };
    moo::Nsga2Options opts;
    opts.population = 32;
    opts.generations = 20;
    bench("nsga2_p32_g20", [&] {
      util::Rng rng(7);
      sink(static_cast<double>(moo::nsga2(fn, 8, 2, opts, rng).x.size()));
    });
  }

  if (json) {
    std::ofstream out("BENCH_micro_perf.json");
    out << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < g_results.size(); ++i) {
      const auto& r = g_results[i];
      out << "    {\"name\": \"" << r.name << "\", \"ms_per_iter\": "
          << r.ms_per_iter << ", \"iterations\": " << r.iterations << "}"
          << (i + 1 < g_results.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"gp_predict_batch_speedup\": "
        << (batch_ms > 0.0 ? loop_ms / batch_ms : 0.0) << ",\n";
    out << "  \"gp_fit_speedup\": "
        << (fit_ws_ms > 0.0 ? fit_ref_ms / fit_ws_ms : 0.0) << ",\n";
    out << "  \"gp_fit_ref_ms\": " << fit_ref_ms << ",\n";
    out << "  \"gp_fit_fused_ms\": " << fit_ws_ms << ",\n";
    out << "  \"gp_fit_parallel_speedup\": "
        << (multi_par_ms > 0.0 ? multi_serial_ms / multi_par_ms : 0.0) << ",\n";
    out << "  \"abl_netlist_elaborate_ms\": " << netlist_elab_ms << ",\n";
    out << "  \"abl_corner_eval_ms\": " << corner_eval_ms << ",\n";
    out << "  \"abl_tran_step_ms\": " << tran_step_ms << ",\n";
    out << "  \"abl_tran_eval_ms\": " << tran_eval_ms << ",\n";
    out << "  \"abl_tran_eval_analytic_ms\": " << tran_eval_analytic_ms
        << ",\n";
    out << "  \"abl_tran_eval_traced_ms\": " << tran_eval_traced_ms << ",\n";
    out << "  \"trace_overhead_ratio\": " << trace_overhead_ratio << ",\n";
    out << "  \"abl_bo_journal_off_ms\": " << bo_journal_off_ms << ",\n";
    out << "  \"abl_bo_journal_on_ms\": " << bo_journal_on_ms << ",\n";
    out << "  \"journal_overhead_ratio\": " << journal_overhead_ratio
        << ",\n";
    out << "  \"abl_eval_recovery_off_ms\": " << eval_recovery_off_ms
        << ",\n";
    out << "  \"abl_eval_recovery_armed_ms\": " << eval_recovery_armed_ms
        << ",\n";
    out << "  \"recovery_off_overhead_ratio\": " << recovery_off_overhead_ratio
        << ",\n";
    out << "  \"abl_sparse_lu_ms\": " << sparse_lu_ms << ",\n";
    out << "  \"abl_sparse_lu_dense_ms\": " << sparse_lu_dense_ms << ",\n";
    out << "  \"sparse_lu_speedup\": "
        << (sparse_lu_ms > 0.0 ? sparse_lu_dense_ms / sparse_lu_ms : 0.0)
        << ",\n";
    out << "  \"abl_sparse_tran_eval_ms\": " << sparse_tran_ms << ",\n";
    out << "  \"abl_sparse_tran_eval_dense_ms\": " << sparse_tran_dense_ms
        << ",\n";
    out << "  \"sparse_tran_eval_speedup\": "
        << (sparse_tran_ms > 0.0 ? sparse_tran_dense_ms / sparse_tran_ms : 0.0)
        << ",\n";
    out << "  \"eval_batch_speedup\": " << eval_batch_speedup << ",\n";
    out << "  \"abl_mos_eval_analytic_ms\": " << mos_eval_analytic_ms << ",\n";
    out << "  \"abl_mos_eval_table_ms\": " << mos_eval_table_ms << ",\n";
    out << "  \"device_table_speedup\": "
        << (mos_eval_table_ms > 0.0 ? mos_eval_analytic_ms / mos_eval_table_ms
                                    : 0.0)
        << ",\n";
    out << "  \"abl_mos_assemble_analytic_ms\": " << mos_assemble_analytic_ms
        << ",\n";
    out << "  \"abl_mos_assemble_table_ms\": " << mos_assemble_table_ms
        << ",\n";
    out << "  \"device_table_assemble_speedup\": "
        << (mos_assemble_table_ms > 0.0
                ? mos_assemble_analytic_ms / mos_assemble_table_ms
                : 0.0)
        << ",\n";
    out << "  \"dc_opamp2_eval_ms\": " << dc_opamp2_ms << ",\n";
    out << "  \"dc_opamp2_eval_analytic_ms\": " << dc_opamp2_analytic_ms
        << ",\n";
    out << "  \"kato_threads\": " << util::thread_count() << ",\n";
    // Lets the baseline comparator skip thread-scaling speedup fields on
    // 1-core runners, where they measure the machine, not the code.
    out << "  \"hardware_concurrency\": "
        << std::thread::hardware_concurrency() << "\n";
    out << "}\n";
    std::cout << "wrote BENCH_micro_perf.json\n";
  }
  return 0;
}

// Fig. 6 — transfer learning across technology nodes and topologies
// (paper Sec. 4.3).
//
// Six panels, each comparing KATO without transfer against KATO with KAT-GP
// + Selective Transfer Learning.  Source knowledge = 200 random simulations
// of the source circuit.  Constrained mode, 200 initial target samples.
// Expected shape: transfer reaches the no-transfer final value with roughly
// half the simulations (~2.4-2.5x in the paper) and ends slightly better.
//
// Panels (a,b) additionally run the FOM-mode node-transfer comparison
// against TLMBO (the Gaussian-copula style baseline handles only FOM
// optimization, as the paper notes).

#include <iostream>
#include <string>

#include "core/experiment.hpp"

using namespace kato;

namespace {

struct Panel {
  const char* label;
  std::string src_kind;
  const char* src_node;
  std::string tgt_kind;
  const char* tgt_node;
  bool fom_comparison;  ///< also run the FOM-mode TLMBO comparison
};

void run_panel(const Panel& panel) {
  auto src_circuit = ckt::make_circuit(panel.src_kind, panel.src_node);
  auto tgt_circuit = ckt::make_circuit(panel.tgt_kind, panel.tgt_node);
  std::cout << "--- Fig.6" << panel.label << ": " << src_circuit->name()
            << "  ->  " << tgt_circuit->name() << " ---\n";

  const auto seeds = core::seed_list(1);

  bo::BoConfig cfg = core::bench_config();
  cfg.n_init = 200;  // paper: 200 initial target samples (constrained)
  cfg.batch = 4;
  cfg.iterations = 15;

  auto cmp = core::run_transfer_comparison(*src_circuit, *tgt_circuit, 200, cfg,
                                           seeds);
  const auto& source = cmp.source;
  std::vector<core::MethodSeries> methods{std::move(cmp.with_transfer),
                                          std::move(cmp.without_transfer)};
  core::print_series(std::cout, "constrained running best", methods, 40);

  // Speedup: sims for TL to reach the no-transfer final median.
  const double no_tl_final = methods[1].band.median.back();
  const double tl_sims = core::median_sims_to_reach(methods[0], no_tl_final, true);
  const double total = static_cast<double>(methods[0].band.median.size());
  std::cout << "TL reaches no-TL final (" << util::fmt(no_tl_final, 2)
            << ") after " << util::fmt(tl_sims, 0) << "/" << util::fmt(total, 0)
            << " sims -> speedup x" << util::fmt(total / tl_sims, 2)
            << "; final TL " << util::fmt(methods[0].band.median.back(), 2)
            << "\n";
  const auto& tl_run = methods[0].runs.front();
  std::cout << "STL weights (w_kat : w_self) = " << util::fmt(tl_run.stl_w_kat, 0)
            << " : " << util::fmt(tl_run.stl_w_self, 0) << "\n";

  if (panel.fom_comparison) {
    util::Rng cal_rng(55);
    const auto norm = ckt::calibrate_fom(*tgt_circuit, 300, cal_rng);
    bo::BoConfig fom_cfg = core::bench_config();
    fom_cfg.n_init = 10;
    fom_cfg.batch = 4;
    fom_cfg.iterations = 20;
    std::vector<core::MethodSeries> fom_methods;
    fom_methods.push_back(core::run_fom_series(
        *tgt_circuit, norm, bo::FomMethod::kato, fom_cfg, seeds, &source,
        "KATO-TL"));
    fom_methods.push_back(core::run_fom_series(
        *tgt_circuit, norm, bo::FomMethod::tlmbo, fom_cfg, seeds, &source));
    fom_methods.push_back(core::run_fom_series(
        *tgt_circuit, norm, bo::FomMethod::kato, fom_cfg, seeds, nullptr,
        "KATO"));
    core::print_series(std::cout, "FOM-mode node transfer (vs TLMBO)",
                       fom_methods, 30);
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "== Fig. 6: transfer learning, seeds=" << core::seed_list(1).size()
            << " ==\n";
  const std::string corner_deck =
      std::string("netlist:") + KATO_SOURCE_DIR +
      "/circuits/netlists/opamp2_corners.cir";
  const Panel panels[] = {
      {"(a) node", "opamp2", "180nm", "opamp2", "40nm", true},
      {"(b) node", "opamp3", "180nm", "opamp3", "40nm", false},
      {"(c) topology", "opamp3", "40nm", "opamp2", "40nm", false},
      {"(d) topology", "opamp2", "40nm", "opamp3", "40nm", false},
      {"(e) node+topology", "opamp3", "180nm", "opamp2", "40nm", false},
      {"(f) node+topology", "opamp2", "180nm", "opamp3", "40nm", false},
      // Beyond the paper's panels: node transfer on the time-domain
      // step-buffer workload — slew/settling/overshoot specs driven by the
      // transient engine instead of AC small-signal measures.
      {"(g) node (transient)", "buffer", "180nm", "buffer", "40nm", false},
      // Corner-robust node transfer: tt/ss/ff PVT corners x 8 mismatch
      // samples per candidate, worst-case/quantile-aggregated specs on both
      // nodes (see README "Corners and Monte Carlo").
      {"(h) node (corners)", corner_deck, "180nm", corner_deck, "40nm", false},
  };
  for (const auto& panel : panels) run_panel(panel);
  return 0;
}

// Fig. 5 — constrained optimization at 180nm (paper Sec. 4.2).
//
// 300 random initial simulations (~1-7% feasible, mirroring the paper's
// 2.3%), then batch-4 BO on the constrained problem.  Methods: KATO
// (modified MACE + NeukGP), full 6-objective MACE, MESMOC-lite, USEMOC-lite.
// Expected shape: KATO best with a clear margin; MESMOC weakest
// (exploitation-heavy); roughly half the simulations to match the best
// baseline.

#include <iostream>

#include "core/experiment.hpp"

using namespace kato;

int main() {
  const auto seeds = core::seed_list(2);
  std::cout << "== Fig. 5: constrained optimization (180nm), seeds="
            << seeds.size() << " ==\n";

  for (const char* kind : {"opamp2", "opamp3", "bandgap"}) {
    auto circuit = ckt::make_circuit(kind, "180nm");

    bo::BoConfig cfg = core::bench_config();
    cfg.n_init = 300;
    cfg.batch = 4;
    cfg.iterations = 15;  // 300 + 60 simulations

    std::vector<core::MethodSeries> methods;
    for (auto m : {bo::ConstrainedMethod::kato, bo::ConstrainedMethod::mace_full,
                   bo::ConstrainedMethod::mesmoc, bo::ConstrainedMethod::usemoc})
      methods.push_back(core::run_constrained_series(*circuit, m, cfg, seeds));

    core::print_series(std::cout, std::string("Fig.5 ") + circuit->name(),
                       methods, 60);

    double best_baseline = 1e18;
    for (std::size_t i = 1; i < methods.size(); ++i)
      best_baseline = std::min(best_baseline, methods[i].band.median.back());
    const double kato_sims =
        core::median_sims_to_reach(methods[0], best_baseline, true);
    std::cout << "KATO final " << util::fmt(methods[0].band.median.back(), 2)
              << " (" << circuit->objective_name() << ") vs best baseline "
              << util::fmt(best_baseline, 2) << "; KATO matches it after "
              << util::fmt(kato_sims, 0) << " sims of "
              << methods[0].band.median.size() << "\n\n";
  }
  return 0;
}

// Ablation — modified (3-objective) vs full (6-objective) constrained MACE
// (paper Sec. 3.3: the reduction "significantly improves efficiency ...
// while maintaining the same level of performance").
//
// Reports final constrained objective and the wall-clock of the proposal
// machinery for both variants on the two-stage OpAmp.

#include <chrono>
#include <iostream>

#include "core/experiment.hpp"

using namespace kato;

int main() {
  std::cout << "== Ablation: modified vs full constrained MACE ==\n";
  auto circuit = ckt::make_circuit("opamp2", "180nm");
  const auto seeds = core::seed_list(1);

  bo::BoConfig cfg = core::bench_config();
  cfg.n_init = 300;
  cfg.batch = 4;
  cfg.iterations = 12;

  util::Table table({"variant", "final I(uA) median", "wall-clock (s)"});
  for (auto variant : {bo::MaceVariant::modified, bo::MaceVariant::full}) {
    auto vcfg = cfg;
    vcfg.kato_variant = variant;
    const auto t0 = std::chrono::steady_clock::now();
    const auto series = core::run_constrained_series(
        *circuit, bo::ConstrainedMethod::kato, vcfg, seeds, nullptr,
        variant == bo::MaceVariant::modified ? "KATO (3-obj, Eq.13)"
                                             : "KATO (6-obj MACE)");
    const auto t1 = std::chrono::steady_clock::now();
    table.add_row(series.name,
                  {series.band.median.back(),
                   std::chrono::duration<double>(t1 - t0).count()});
  }
  std::cout << table.to_string()
            << "Expected shape: comparable final quality, lower wall-clock "
               "for the 3-objective variant.\n";
  return 0;
}

// Fig. 1(b) — Neural-kernel assessment.
//
// Paper setup: predict the performance of a 180nm second-stage amplification
// circuit from 100 training / 50 test points and compare kernels.  We report
// test RMSE and NLL for ARD RBF / RQ / Periodic / Matern-5/2 and Neuk.
// Expected shape (paper): Neuk matches or beats every fixed kernel.

#include <cmath>
#include <iostream>
#include <memory>

#include "bo/surrogate.hpp"
#include "circuits/factory.hpp"
#include "gp/gp.hpp"
#include "kernel/neuk.hpp"
#include "kernel/stationary.hpp"
#include "util/sampling.hpp"
#include "util/table.hpp"

using namespace kato;

int main() {
  std::cout << "== Fig. 1(b): kernel assessment on the 180nm second-stage "
               "amplifier (100 train / 50 test) ==\n";
  auto circuit = ckt::make_circuit("stage2", "180nm");
  util::Rng rng(2024);

  const std::size_t n_train = 100;
  const std::size_t n_test = 50;
  auto design = util::latin_hypercube(n_train + n_test, circuit->dim(), rng);
  la::Matrix xtr(n_train, circuit->dim());
  la::Vector ytr(n_train);
  la::Matrix xte(n_test, circuit->dim());
  la::Vector yte(n_test);
  for (std::size_t i = 0; i < n_train + n_test; ++i) {
    std::vector<double> x(design.row(i), design.row(i) + circuit->dim());
    const auto m = circuit->evaluate(x);
    const double gain = m ? (*m)[0] : 0.0;
    if (i < n_train) {
      xtr.set_row(i, x);
      ytr[i] = gain;
    } else {
      xte.set_row(i - n_train, x);
      yte[i - n_train] = gain;
    }
  }

  struct Entry {
    const char* name;
    std::function<std::unique_ptr<kern::Kernel>(util::Rng&)> make;
  };
  const std::size_t d = circuit->dim();
  std::vector<Entry> kernels{
      {"RBF", [d](util::Rng&) {
         return std::make_unique<kern::StationaryArd>(kern::StationaryType::rbf, d);
       }},
      {"RQ", [d](util::Rng&) {
         return std::make_unique<kern::StationaryArd>(kern::StationaryType::rq, d);
       }},
      {"Matern52", [d](util::Rng&) {
         return std::make_unique<kern::StationaryArd>(
             kern::StationaryType::matern52, d);
       }},
      {"PER", [d](util::Rng&) {
         return std::make_unique<kern::PeriodicArd>(d);
       }},
      {"Neuk", [d](util::Rng& r) {
         kern::NeukConfig cfg;
         return std::make_unique<kern::NeukKernel>(d, cfg, r);
       }},
  };

  util::Table table({"kernel", "test RMSE (dB)", "mean pred stddev"});
  double neuk_rmse = 0.0;
  double best_fixed = 1e18;
  for (const auto& entry : kernels) {
    util::Rng krng(7);
    gp::GaussianProcess model(entry.make(krng));
    model.set_data(xtr, ytr);
    gp::GpFitOptions opts;
    opts.iterations = 200;
    opts.lr = 0.04;
    model.fit(opts, krng);
    double se = 0.0;
    double spread = 0.0;
    for (std::size_t i = 0; i < n_test; ++i) {
      const auto p = model.predict(xte.row(i));
      se += (p.mean - yte[i]) * (p.mean - yte[i]);
      spread += std::sqrt(p.var);
    }
    const double rmse = std::sqrt(se / static_cast<double>(n_test));
    table.add_row(entry.name, {rmse, spread / static_cast<double>(n_test)});
    if (std::string(entry.name) == "Neuk")
      neuk_rmse = rmse;
    else
      best_fixed = std::min(best_fixed, rmse);
  }
  std::cout << table.to_string();
  std::cout << "Neuk vs best fixed kernel: " << util::fmt(neuk_rmse, 3) << " vs "
            << util::fmt(best_fixed, 3)
            << (neuk_rmse <= 1.05 * best_fixed ? "  [shape: REPRODUCED]"
                                               : "  [shape: NOT reproduced]")
            << "\n";
  return 0;
}

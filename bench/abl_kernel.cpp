// Ablation — Neuk vs fixed kernels inside the full BO loop (paper Sec. 3.1
// motivates Neuk as a stable automatic alternative to DKL and fixed
// kernels).  FOM mode on the two-stage OpAmp at 180nm.

#include <iostream>

#include "core/experiment.hpp"

using namespace kato;

int main() {
  std::cout << "== Ablation: surrogate kernel inside the BO loop ==\n";
  auto circuit = ckt::make_circuit("opamp2", "180nm");
  util::Rng cal_rng(99);
  const auto norm = ckt::calibrate_fom(*circuit, 300, cal_rng);
  const auto seeds = core::seed_list(3);

  bo::BoConfig cfg = core::bench_config();
  cfg.n_init = 10;
  cfg.batch = 4;
  cfg.iterations = 20;

  // KATO runs the Neuk surrogate; the MACE driver with its RBF surrogate is
  // the identical pipeline with a fixed kernel, isolating the kernel effect.
  std::vector<core::MethodSeries> methods;
  methods.push_back(core::run_fom_series(*circuit, norm, bo::FomMethod::kato,
                                         cfg, seeds, nullptr, "Neuk surrogate"));
  methods.push_back(core::run_fom_series(*circuit, norm, bo::FomMethod::mace,
                                         cfg, seeds, nullptr, "RBF surrogate"));
  core::print_series(std::cout, "FOM vs simulations", methods, 15);
  std::cout << "Expected shape: Neuk >= RBF in final FOM.\n";
  return 0;
}

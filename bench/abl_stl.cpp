// Ablation — Selective Transfer Learning vs forced transfer vs no transfer
// (paper Sec. 3.4: STL exists because transfer can be NEGATIVE when source
// and target differ too much).
//
// A hostile source is manufactured by shuffling the metric rows of genuine
// source data: the source GP then encodes confident nonsense.  Expected
// shape: forced transfer degrades; STL tracks the no-transfer result
// (weights shift toward the self model); with a GENUINE source STL matches
// or beats no-transfer.

#include <iostream>

#include "core/experiment.hpp"

using namespace kato;

namespace {

bo::TransferSource hostile_source(const ckt::SizingCircuit& circuit,
                                  std::uint64_t seed) {
  auto src = bo::build_transfer_source(circuit, 200, bo::KernelKind::rbf, seed);
  // Shuffle metric rows against inputs: the model keeps realistic marginal
  // statistics but carries zero information about the mapping.
  util::Rng rng(seed + 1);
  const auto perm = rng.permutation(src.y.rows());
  la::Matrix shuffled(src.y.rows(), src.y.cols());
  for (std::size_t i = 0; i < perm.size(); ++i)
    shuffled.set_row(i, src.y.row(perm[i]));
  src.y = shuffled;
  src.metric_model->set_data(src.x, src.y);
  gp::GpFitOptions fit;
  fit.iterations = 80;
  src.metric_model->fit(fit, rng);
  return src;
}

}  // namespace

int main() {
  std::cout << "== Ablation: Selective Transfer Learning ==\n";
  auto target = ckt::make_circuit("opamp2", "40nm");
  auto src_circuit = ckt::make_circuit("opamp2", "180nm");
  const auto seeds = core::seed_list(1);

  bo::BoConfig cfg = core::bench_config();
  cfg.n_init = 200;
  cfg.batch = 4;
  cfg.iterations = 12;

  const auto genuine =
      bo::build_transfer_source(*src_circuit, 200, bo::KernelKind::rbf, 777);
  const auto hostile = hostile_source(*src_circuit, 778);

  util::Table table({"mode", "final I(uA) median", "w_kat:w_self (seed 1)"});
  auto run = [&](const std::string& label, const bo::TransferSource* src,
                 bool stl) {
    auto vcfg = cfg;
    vcfg.use_stl = stl;
    const auto series = core::run_constrained_series(
        *target, bo::ConstrainedMethod::kato, vcfg, seeds, src, label);
    const auto& r = series.runs.front();
    table.add_row({label, util::fmt(series.band.median.back(), 2),
                   util::fmt(r.stl_w_kat, 0) + ":" + util::fmt(r.stl_w_self, 0)});
    return series.band.median.back();
  };

  const double no_tl = run("no transfer", nullptr, true);
  run("STL + genuine source", &genuine, true);
  const double stl_hostile = run("STL + hostile source", &hostile, true);
  const double forced_hostile = run("forced + hostile source", &hostile, false);
  std::cout << table.to_string();

  std::cout << "Expected shape: forced+hostile worst; STL+hostile close to "
               "no-transfer.\n";
  std::cout << "Observed: no-TL " << util::fmt(no_tl, 2) << ", STL+hostile "
            << util::fmt(stl_hostile, 2) << ", forced+hostile "
            << util::fmt(forced_hostile, 2) << "\n";
  return 0;
}

// Fig. 4 — FOM optimization at 180nm (paper Sec. 4.1).
//
// Three circuits (two-stage OpAmp, three-stage OpAmp, bandgap), FOM of
// Eq. 2, 10 random initial simulations, batch of 4.  Methods: KATO, MACE,
// SMAC-RF, random search.  Expected shape: KATO reaches the highest FOM and
// needs roughly half the simulations to match the best baseline.

#include <iostream>

#include "core/experiment.hpp"

using namespace kato;

int main() {
  const auto seeds = core::seed_list(3);
  std::cout << "== Fig. 4: FOM optimization (180nm), seeds=" << seeds.size()
            << " ==\n";

  for (const char* kind : {"opamp2", "opamp3", "bandgap"}) {
    auto circuit = ckt::make_circuit(kind, "180nm");
    util::Rng cal_rng(99);
    const auto norm = ckt::calibrate_fom(*circuit, 300, cal_rng);

    bo::BoConfig cfg = core::bench_config();
    cfg.n_init = 10;
    cfg.batch = 4;
    cfg.iterations = 25;  // 10 + 100 simulations total

    std::vector<core::MethodSeries> methods;
    for (auto m : {bo::FomMethod::kato, bo::FomMethod::mace,
                   bo::FomMethod::smac_rf, bo::FomMethod::random_search})
      methods.push_back(core::run_fom_series(*circuit, norm, m, cfg, seeds));

    core::print_series(std::cout, std::string("Fig.4 ") + circuit->name(),
                       methods, 10);

    // Speedup: simulations KATO needs to reach the best baseline's final
    // median FOM.
    double best_baseline = -1e18;
    for (std::size_t i = 1; i < methods.size(); ++i)
      best_baseline = std::max(best_baseline, methods[i].band.median.back());
    const double kato_sims =
        core::median_sims_to_reach(methods[0], best_baseline, false);
    const double total = static_cast<double>(methods[0].band.median.size());
    std::cout << "KATO final FOM " << util::fmt(methods[0].band.median.back(), 3)
              << " vs best baseline " << util::fmt(best_baseline, 3)
              << "; KATO reaches baseline-final FOM after "
              << util::fmt(kato_sims, 0) << "/" << util::fmt(total, 0)
              << " sims\n\n";
  }
  return 0;
}

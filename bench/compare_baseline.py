#!/usr/bin/env python3
"""Diff a BENCH_micro_perf.json run against the committed baseline.

Usage:
    compare_baseline.py <current.json> <baseline.json> [--tol 0.25]
                        [--enforce-scaling]

Prints a GitHub-flavored markdown delta table (pipe it into
$GITHUB_STEP_SUMMARY from the workflow) covering every tracked top-level
`*_ms` field, plus the speedup ratios for context.  Exits non-zero when any
tracked `*_ms` field regressed by more than --tol (default 25%) relative to
the baseline — absolute per-iteration times, so expect noise on shared
runners; KATO_BENCH_TOL overrides the threshold without editing workflows.

Fields present in only one of the two files are reported (status `new` /
`removed`) instead of erroring, so baseline and bench can evolve in either
order across PRs.

Same-thread A/B ratios (SPEEDUP_FLOORS, e.g. device_table_speedup) are
floored whenever the current run reports them: both arms run in the same
binary on the same cores, so the ratio is machine-independent.
Thread-scaling ratios (SCALING_FLOORS) compare a 1-thread run against a
multi-thread run and only mean anything on a multi-core runner; they are
floored only under --enforce-scaling, and skipped with a loud note when the
current run reports hardware_concurrency < 2.  Overhead ratios (`*_ratio`
fields, RATIO_CEILINGS — e.g. trace_overhead_ratio <= 1.05) are ceilings,
enforced whenever the current run reports them for the same
machine-independence reason as the speedup floors.

Only the Python standard library is used.
"""

import json
import os
import sys

# Speedup fields that compare a 1-thread run against a multi-thread run of
# the same code.  On a 1-core runner they measure the machine, not the code
# (the ROADMAP flags eval_batch_speedup ~0.95 on CI as exactly this
# artifact), so they are skipped with a note when the current run reports
# hardware_concurrency < 2.  Under --enforce-scaling (the multi-core CI
# bench job) they become hard floors.
SCALING_FIELDS = {"eval_batch_speedup", "gp_fit_parallel_speedup"}
SCALING_FLOORS = {"eval_batch_speedup": 2.0, "gp_fit_parallel_speedup": 1.5}

# Same-binary, same-thread-count A/B ratios: machine-independent, enforced
# whenever the current run reports them.
SPEEDUP_FLOORS = {"device_table_speedup": 3.0}

# Overhead ratios (`*_ratio` fields, current/reference arms interleaved in
# the same binary): machine-independent ceilings, enforced whenever the
# current run reports them.  trace_overhead_ratio is the cost of running a
# full transient evaluation with an active KATO_TRACE session — the
# instrumentation contract is <= 5% on its densest path.
# journal_overhead_ratio is the cost of a whole seeded BO run with a
# KATO_RUN_LOG session streaming per-iteration JSONL; same <= 5% contract.
# recovery_off_overhead_ratio is the cost of the fault-injection and
# eval-deadline checks when armed but idle (never-firing fault + far-future
# deadline vs everything disarmed); same <= 5% contract.
RATIO_CEILINGS = {"trace_overhead_ratio": 1.05,
                  "journal_overhead_ratio": 1.05,
                  "recovery_off_overhead_ratio": 1.05}


def load(path):
    with open(path) as f:
        return json.load(f)


def is_num(v):
    return isinstance(v, (int, float))


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    current = load(argv[1])
    baseline = load(argv[2])
    tol = 0.25
    if "--tol" in argv:
        tol = float(argv[argv.index("--tol") + 1])
    if os.environ.get("KATO_BENCH_TOL"):
        tol = float(os.environ["KATO_BENCH_TOL"])
    enforce_scaling = "--enforce-scaling" in argv

    def keys(suffix):
        both = sorted(
            k for k in baseline
            if k.endswith(suffix) and is_num(baseline[k]) and k in current
        )
        new = sorted(
            k for k in current
            if k.endswith(suffix) and is_num(current[k]) and k not in baseline
        )
        removed = sorted(
            k for k in baseline
            if k.endswith(suffix) and is_num(baseline[k]) and k not in current
        )
        return both, new, removed

    tracked, tracked_new, tracked_removed = keys("_ms")
    ratios, ratios_new, ratios_removed = keys("_speedup")
    overheads, overheads_new, overheads_removed = keys("_ratio")

    failures = []
    print("### micro_perf vs committed baseline (tol %.0f%%)" % (tol * 100))
    print()
    print("| field | baseline | current | delta | status |")
    print("| --- | ---: | ---: | ---: | :-- |")
    for k in tracked:
        base = float(baseline[k])
        cur = float(current[k])
        delta = (cur - base) / base if base > 0 else 0.0
        status = "ok"
        if base > 0 and delta > tol:
            status = "REGRESSED"
            failures.append(k)
        elif delta < -tol:
            status = "improved"
        print(
            "| %s | %.4f ms | %.4f ms | %+.1f%% | %s |"
            % (k, base, cur, delta * 100, status)
        )
    for k in tracked_new:
        print("| %s | — | %.4f ms | — | new |" % (k, float(current[k])))
    for k in tracked_removed:
        print("| %s | %.4f ms | — | — | removed |" % (k, float(baseline[k])))
    cores = int(current.get("hardware_concurrency", 0))
    skipped_scaling = []

    def ratio_status(k, cur):
        """Floor check for a ratio present in the current run."""
        if k in SPEEDUP_FLOORS and cur < SPEEDUP_FLOORS[k]:
            failures.append(k)
            return "BELOW FLOOR %.1fx" % SPEEDUP_FLOORS[k]
        if enforce_scaling and k in SCALING_FLOORS and cur < SCALING_FLOORS[k]:
            failures.append(k)
            return "BELOW FLOOR %.1fx" % SCALING_FLOORS[k]
        return "ratio"

    for k in ratios:
        if k in SCALING_FIELDS and 0 < cores < 2:
            skipped_scaling.append(k)
            print("| %s | %.2fx | — | — | skipped (1-core runner) |"
                  % (k, float(baseline[k])))
            continue
        cur = float(current[k])
        print(
            "| %s | %.2fx | %.2fx | — | %s |"
            % (k, float(baseline[k]), cur, ratio_status(k, cur))
        )
    for k in ratios_new:
        if k in SCALING_FIELDS and 0 < cores < 2:
            skipped_scaling.append(k)
            print("| %s | — | — | — | skipped (1-core runner) |" % k)
            continue
        cur = float(current[k])
        print("| %s | — | %.2fx | — | new, %s |" % (k, cur, ratio_status(k, cur)))
    for k in ratios_removed:
        print("| %s | %.2fx | — | — | removed |" % (k, float(baseline[k])))

    def ceiling_status(k, cur):
        """Ceiling check for an overhead ratio present in the current run."""
        if k in RATIO_CEILINGS and cur > RATIO_CEILINGS[k]:
            failures.append(k)
            return "ABOVE CEILING %.2fx" % RATIO_CEILINGS[k]
        return "ratio"

    for k in overheads:
        cur = float(current[k])
        print(
            "| %s | %.3fx | %.3fx | — | %s |"
            % (k, float(baseline[k]), cur, ceiling_status(k, cur))
        )
    for k in overheads_new:
        cur = float(current[k])
        print("| %s | — | %.3fx | — | new, %s |" % (k, cur, ceiling_status(k, cur)))
    for k in overheads_removed:
        print("| %s | %.3fx | — | — | removed |" % (k, float(baseline[k])))
    print()
    if skipped_scaling:
        print(
            "Note: skipped thread-scaling field(s) %s — the runner reports "
            "hardware_concurrency=%d, so parallel-vs-serial ratios measure "
            "the machine, not the code." % (", ".join(skipped_scaling), cores)
        )
        print()
    if failures:
        print("**Failed fields:** " + ", ".join(failures))
        return 1
    floors = "with" if enforce_scaling else "without"
    print(
        "No tracked `*_ms` field regressed beyond %.0f%%; all speedup floors "
        "and overhead ceilings met (%s thread-scaling floors)."
        % (tol * 100, floors)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

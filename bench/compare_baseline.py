#!/usr/bin/env python3
"""Diff a BENCH_micro_perf.json run against the committed baseline.

Usage:
    compare_baseline.py <current.json> <baseline.json> [--tol 0.25]

Prints a GitHub-flavored markdown delta table (pipe it into
$GITHUB_STEP_SUMMARY from the workflow) covering every tracked top-level
`*_ms` field, plus the speedup ratios for context.  Exits non-zero when any
tracked `*_ms` field regressed by more than --tol (default 25%) relative to
the baseline — absolute per-iteration times, so expect noise on shared
runners; KATO_BENCH_TOL overrides the threshold without editing workflows.

Only the Python standard library is used.
"""

import json
import os
import sys

# Speedup fields that compare a 1-thread run against a multi-thread run of
# the same code.  On a 1-core runner they measure the machine, not the code
# (the ROADMAP flags eval_batch_speedup ~0.95 on CI as exactly this
# artifact), so they are skipped with a note when the current run reports
# hardware_concurrency < 2.
SCALING_FIELDS = {"eval_batch_speedup", "gp_fit_parallel_speedup"}


def load(path):
    with open(path) as f:
        return json.load(f)


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    current = load(argv[1])
    baseline = load(argv[2])
    tol = 0.25
    if "--tol" in argv:
        tol = float(argv[argv.index("--tol") + 1])
    if os.environ.get("KATO_BENCH_TOL"):
        tol = float(os.environ["KATO_BENCH_TOL"])

    tracked = sorted(
        k
        for k in baseline
        if k.endswith("_ms") and isinstance(baseline[k], (int, float)) and k in current
    )
    ratios = sorted(
        k
        for k in baseline
        if k.endswith("_speedup") and isinstance(baseline[k], (int, float)) and k in current
    )

    failures = []
    print("### micro_perf vs committed baseline (tol %.0f%%)" % (tol * 100))
    print()
    print("| field | baseline | current | delta | status |")
    print("| --- | ---: | ---: | ---: | :-- |")
    for k in tracked:
        base = float(baseline[k])
        cur = float(current[k])
        delta = (cur - base) / base if base > 0 else 0.0
        status = "ok"
        if base > 0 and delta > tol:
            status = "REGRESSED"
            failures.append(k)
        elif delta < -tol:
            status = "improved"
        print(
            "| %s | %.4f ms | %.4f ms | %+.1f%% | %s |"
            % (k, base, cur, delta * 100, status)
        )
    cores = int(current.get("hardware_concurrency", 0))
    skipped_scaling = []
    for k in ratios:
        if k in SCALING_FIELDS and 0 < cores < 2:
            skipped_scaling.append(k)
            print("| %s | %.2fx | — | — | skipped (1-core runner) |"
                  % (k, float(baseline[k])))
            continue
        print(
            "| %s | %.2fx | %.2fx | — | ratio |"
            % (k, float(baseline[k]), float(current[k]))
        )
    print()
    if skipped_scaling:
        print(
            "Note: skipped thread-scaling field(s) %s — the runner reports "
            "hardware_concurrency=%d, so parallel-vs-serial ratios measure "
            "the machine, not the code." % (", ".join(skipped_scaling), cores)
        )
        print()
    if failures:
        print("**Regressed fields:** " + ", ".join(failures))
        return 1
    print("No tracked `*_ms` field regressed beyond %.0f%%." % (tol * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// Table 1 — optimal performance via constrained optimization at 180nm.
//
// Rows: Human Expert (hand-tuned reference through the same simulator),
// MESMOC, USEMOC, MACE, KATO.  Columns per circuit mirror the paper.
// Expected shape: every BO method beats the expert on the objective; KATO
// attains the lowest objective by trading constraint margin down to the spec
// ("extreme trade-off ... as long as fulfilling the requirements").

#include <iostream>

#include "core/experiment.hpp"

using namespace kato;

namespace {

void run_circuit(const char* kind, const std::vector<std::string>& cols) {
  auto circuit = ckt::make_circuit(kind, "180nm");
  std::cout << "--- " << circuit->name() << " ---\n";

  std::vector<std::string> header{"method"};
  header.insert(header.end(), cols.begin(), cols.end());
  util::Table table(header);

  std::vector<std::string> spec_row{"Specifications", "min"};
  for (const auto& spec : circuit->constraints())
    spec_row.push_back((spec.is_lower_bound ? ">" : "<") +
                       util::fmt(spec.bound, 0));
  table.add_row(spec_row);

  const auto expert = circuit->evaluate(circuit->expert_design());
  if (expert) table.add_row("Human Expert", *expert, 2);

  const auto seeds = core::seed_list(1);
  bo::BoConfig cfg = core::bench_config();
  cfg.n_init = 300;
  cfg.batch = 4;
  cfg.iterations = 12;
  for (auto m : {bo::ConstrainedMethod::mesmoc, bo::ConstrainedMethod::usemoc,
                 bo::ConstrainedMethod::mace_full, bo::ConstrainedMethod::kato}) {
    const auto series = core::run_constrained_series(*circuit, m, cfg, seeds);
    const auto& best = core::best_run(series, true);
    if (!best.best_metrics.empty())
      table.add_row(bo::to_string(m), best.best_metrics, 2);
    else
      table.add_row({std::string(bo::to_string(m)), "no", "feasible", "design",
                     "found"});
  }
  std::cout << table.to_string() << "\n";
}

}  // namespace

int main() {
  std::cout << "== Table 1: constrained-optimization outcomes (180nm) ==\n";
  run_circuit("opamp2", {"I(uA)", "Gain(dB)", "PM(deg)", "GBW(MHz)"});
  run_circuit("opamp3", {"I(uA)", "Gain(dB)", "PM(deg)", "GBW(MHz)"});
  run_circuit("bandgap", {"TC(ppm/C)", "I(uA)", "PSRR(dB)"});
  return 0;
}

// Table 2 — optimal performance with transfer learning (40nm targets).
//
// Rows per circuit: Human Expert, KATO (no transfer), KATO (TL node),
// KATO (TL design), KATO (TL node & design).  Expected shape: all KATO
// variants beat the expert; the TL variants reach lower current than
// no-transfer KATO, with node transfer the easiest task.

#include <iostream>

#include "core/experiment.hpp"

using namespace kato;

namespace {

void run_target(const char* tgt_kind, const char* node_src_kind,
                const char* design_src_kind) {
  auto target = ckt::make_circuit(tgt_kind, "40nm");
  std::cout << "--- " << target->name() << " ---\n";

  util::Table table({"method", "I(uA)", "Gain(dB)", "PM(deg)", "GBW(MHz)"});
  std::vector<std::string> spec_row{"Specifications", "min"};
  for (const auto& spec : target->constraints())
    spec_row.push_back((spec.is_lower_bound ? ">" : "<") +
                       util::fmt(spec.bound, 0));
  table.add_row(spec_row);
  const auto expert = target->evaluate(target->expert_design());
  if (expert) table.add_row("Human Expert", *expert, 2);

  // Sources: node transfer = same topology at 180nm; design transfer =
  // other topology at 40nm; both = other topology at 180nm.
  auto src_node = ckt::make_circuit(tgt_kind, "180nm");
  auto src_design = ckt::make_circuit(design_src_kind, "40nm");
  auto src_both = ckt::make_circuit(node_src_kind, "180nm");

  const auto seeds = core::seed_list(1);
  bo::BoConfig cfg = core::bench_config();
  cfg.n_init = 200;
  cfg.batch = 4;
  cfg.iterations = 12;

  struct Variant {
    std::string label;
    const ckt::SizingCircuit* src;
  };
  const Variant variants[] = {
      {"KATO", nullptr},
      {"KATO (TL Node)", src_node.get()},
      {"KATO (TL Design)", src_design.get()},
      {"KATO (TL Node&Design)", src_both.get()},
  };
  for (const auto& v : variants) {
    std::optional<bo::TransferSource> source;
    if (v.src)
      source = bo::build_transfer_source(*v.src, 200, bo::KernelKind::rbf, 777);
    const auto series = core::run_constrained_series(
        *target, bo::ConstrainedMethod::kato, cfg, seeds,
        source ? &*source : nullptr, v.label);
    const auto& best = core::best_run(series, true);
    if (!best.best_metrics.empty())
      table.add_row(v.label, best.best_metrics, 2);
    else
      table.add_row({v.label, "no", "feasible", "design", "found"});
  }
  std::cout << table.to_string() << "\n";
}

}  // namespace

int main() {
  std::cout << "== Table 2: transfer-learning outcomes (40nm) ==\n";
  // Two-stage target: design transfer from the three-stage amp; "both" =
  // three-stage @180nm.  Mirrored for the three-stage target.
  run_target("opamp2", "opamp3", "opamp3");
  run_target("opamp3", "opamp2", "opamp2");
  return 0;
}

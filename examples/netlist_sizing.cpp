// Netlist sizing: turn any SPICE-subset deck into a KATO workload.
//
//   ./build/examples/netlist_sizing [deck.cir] [node]
//
// Defaults to the shipped two-stage OpAmp deck on the 180nm PDK.  Parses
// the deck, prints the sizing variables and specs it declares, then runs a
// short seeded BO loop (5 iterations — this doubles as the CTest workflow
// check for the parser/elaborator path; raise the budget for real sizing).
// Works unchanged for time-domain decks: pass
// circuits/netlists/buffer_tran.cir to size slew/settling/power specs
// through the transient engine (the netlist_sizing_tran_example CTest
// entry).

#include <cstdio>
#include <iostream>

#include "core/kato.hpp"
#include "util/table.hpp"

namespace {

/// %g-style rendering so micrometer/picofarad ranges stay readable.
std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

}  // namespace

#ifndef KATO_SOURCE_DIR
#define KATO_SOURCE_DIR "."
#endif

int main(int argc, char** argv) {
  using namespace kato;

  const std::string deck_path =
      argc > 1 ? argv[1]
               : std::string(KATO_SOURCE_DIR) + "/circuits/netlists/opamp2.cir";
  const std::string node = argc > 2 ? argv[2] : "180nm";

  std::unique_ptr<ckt::SizingCircuit> circuit;
  try {
    circuit = ckt::make_circuit("netlist:" + deck_path, node);
  } catch (const std::exception& err) {
    std::cerr << "deck rejected: " << err.what() << "\n";
    return 1;
  }

  std::cout << "Sizing " << circuit->name() << " (" << circuit->dim()
            << " design variables from the deck)\n";
  util::Table vars({"variable", "lo", "hi", "scale"});
  const auto& space = circuit->space();
  for (std::size_t i = 0; i < space.dim(); ++i)
    vars.add_row({space.names[i], fmt_g(space.lo[i]), fmt_g(space.hi[i]),
                  space.log_scale[i] ? "log" : "lin"});
  std::cout << vars.to_string();
  std::cout << "objective: minimize " << circuit->objective_name() << "; "
            << circuit->constraints().size() << " constraint(s)\n\n";

  KatoOptimizer optimizer(*circuit);
  auto& cfg = optimizer.config();
  cfg.n_init = 20;
  cfg.iterations = 5;  // parse -> elaborate -> simulate, end to end
  cfg.batch = 2;
  cfg.nsga.population = 16;
  cfg.nsga.generations = 8;
  cfg.max_gp_points = 128;
  cfg.hyper_every = 3;
  cfg.gp_initial.iterations = 25;
  cfg.gp_refit.iterations = 8;
  const auto result = optimizer.optimize(/*seed=*/1);

  std::cout << "ran " << result.trace.size() << " simulations\n";
  if (result.best_metrics.empty()) {
    std::cout << "no feasible design at this tiny budget (expected for hard "
                 "specs) — the parse/elaborate/simulate pipeline still ran.\n";
    return 0;
  }
  util::Table metrics({"metric", "value", "spec"});
  metrics.add_row({circuit->objective_name(),
                   util::fmt(result.best_metrics[0], 2), "minimize"});
  for (std::size_t c = 0; c < circuit->constraints().size(); ++c) {
    const auto& spec = circuit->constraints()[c];
    metrics.add_row({spec.name + "(" + spec.unit + ")",
                     util::fmt(result.best_metrics[1 + c], 2),
                     (spec.is_lower_bound ? "> " : "< ") +
                         util::fmt(spec.bound, 0)});
  }
  std::cout << metrics.to_string();
  return 0;
}

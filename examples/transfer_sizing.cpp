// Transfer learning across technology nodes (paper Sec. 3.2/3.4): reuse
// knowledge from a 180nm two-stage OpAmp study to size the same topology at
// 40nm, and compare against starting from scratch.
//
// Build & run:  ./build/examples/transfer_sizing

#include <iostream>

#include "core/kato.hpp"

int main() {
  using namespace kato;

  // The "previously studied" circuit: 200 archived simulations at 180nm.
  auto source_circuit = ckt::make_circuit("opamp2", "180nm");
  std::cout << "Building source knowledge from " << source_circuit->name()
            << " (200 simulations)...\n";
  const auto source =
      bo::build_transfer_source(*source_circuit, 200, bo::KernelKind::rbf, 42);

  // The new target: same topology, 40nm node, different specs and ranges.
  auto target = ckt::make_circuit("opamp2", "40nm");

  bo::BoConfig cfg;
  cfg.n_init = 80;
  cfg.iterations = 8;

  KatoOptimizer scratch(*target, cfg);
  const auto plain = scratch.optimize(/*seed=*/1);

  KatoOptimizer with_tl(*target, cfg);
  with_tl.set_transfer_source(&source);
  const auto tl = with_tl.optimize(/*seed=*/1);

  auto report = [&](const char* label, const bo::RunResult& r) {
    std::cout << label << ": ";
    if (r.best_metrics.empty()) {
      std::cout << "no feasible design\n";
      return;
    }
    std::cout << "Itotal " << r.best_metrics[0] << " uA (Gain "
              << r.best_metrics[1] << " dB, PM " << r.best_metrics[2]
              << " deg, GBW " << r.best_metrics[3] << " MHz)\n";
  };
  report("KATO from scratch   ", plain);
  report("KATO with transfer  ", tl);
  std::cout << "(single-seed demo; bench/fig6_transfer runs the statistical "
               "comparison)\n";
  std::cout << "STL weights ended at w_kat:w_self = " << tl.stl_w_kat << ":"
            << tl.stl_w_self
            << "  (the scheme shifts budget toward whichever model keeps "
               "producing improvements)\n";
  return 0;
}

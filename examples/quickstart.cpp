// Quickstart: size the 180nm two-stage OpAmp with KATO.
//
//   minimize Itotal   s.t.  Gain > 60 dB, PM > 60 deg, GBW > 4 MHz   (Eq. 15)
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/kato.hpp"
#include "util/table.hpp"

int main() {
  using namespace kato;

  auto circuit = ckt::make_circuit("opamp2", "180nm");
  std::cout << "Sizing " << circuit->name() << " (" << circuit->dim()
            << " design variables)\n";

  KatoOptimizer optimizer(*circuit);
  optimizer.config().n_init = 60;      // random simulations to seed the GPs
  optimizer.config().iterations = 10;  // BO iterations x batch of 4
  const auto result = optimizer.optimize(/*seed=*/1);

  if (result.best_metrics.empty()) {
    std::cout << "No feasible design found — raise the budget.\n";
    return 1;
  }

  std::cout << "\nBest design found after " << result.trace.size()
            << " simulations:\n";
  util::Table vars({"variable", "value"});
  const auto physical = circuit->space().to_physical(result.best_x);
  for (std::size_t i = 0; i < circuit->dim(); ++i)
    vars.add_row(circuit->space().names[i], {physical[i]}, 12);
  std::cout << vars.to_string();

  util::Table metrics({"metric", "value", "spec"});
  metrics.add_row({circuit->objective_name(),
                   util::fmt(result.best_metrics[0], 2), "minimize"});
  for (std::size_t c = 0; c < circuit->constraints().size(); ++c) {
    const auto& spec = circuit->constraints()[c];
    metrics.add_row({spec.name + "(" + spec.unit + ")",
                     util::fmt(result.best_metrics[1 + c], 2),
                     (spec.is_lower_bound ? "> " : "< ") +
                         util::fmt(spec.bound, 0)});
  }
  std::cout << metrics.to_string();
  return 0;
}

// Extending the library: define YOUR OWN circuit on top of the MNA
// simulator and hand it to KATO.  Here: a two-transistor cascode
// common-source stage — minimize current subject to a gain spec.
//
// Build & run:  ./build/examples/custom_circuit

#include <iostream>

#include "core/kato.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"

using namespace kato;

namespace {

/// A user-defined sizing problem: implement the SizingCircuit interface.
class CascodeStage final : public ckt::SizingCircuit {
 public:
  CascodeStage() : pdk_(ckt::pdk_180nm()) {
    space_.add("W", 2e-6, 200e-6);
    space_.add("L", pdk_.lmin, pdk_.lmax);
    space_.add("Ib", 5e-6, 200e-6);
    space_.add("Rl", 10e3, 2e6);
    specs_ = {{"Gain", "dB", 25.0, true}};
  }

  std::string name() const override { return "custom-cascode-stage"; }
  const ckt::DesignSpace& space() const override { return space_; }
  std::string objective_name() const override { return "Itotal(uA)"; }
  const std::vector<ckt::MetricSpec>& constraints() const override {
    return specs_;
  }

  std::optional<std::vector<double>> evaluate(
      const std::vector<double>& unit_x) const override {
    const auto p = space_.to_physical(unit_x);
    const double w = p[0], l = p[1], ib = p[2], rl = p[3];

    sim::Circuit c;
    const int vdd = c.new_node("vdd");
    const int in = c.new_node("in");
    const int bg = c.new_node("bg");
    const int casc = c.new_node("casc");
    const int mid = c.new_node("mid");
    const int out = c.new_node("out");
    const int vdd_src = c.add_vsource(vdd, sim::Circuit::ground, pdk_.vdd);

    // Self-biased input through a current mirror; AC rides on the bias.
    c.add_isource(vdd, bg, ib);
    c.add_mosfet(bg, bg, sim::Circuit::ground, w, l, pdk_.nmos);
    c.add_vsource(in, bg, 0.0, 1.0);
    // Cascode gate at a fixed mid-rail bias.
    c.add_vsource(casc, sim::Circuit::ground, 0.9);

    c.add_mosfet(mid, in, sim::Circuit::ground, w, l, pdk_.nmos);
    c.add_mosfet(out, casc, mid, w, l, pdk_.nmos);
    c.add_resistor(vdd, out, rl);
    c.add_capacitor(out, sim::Circuit::ground, 0.5e-12);

    const auto op = sim::solve_dc(c);
    if (!op.converged) return std::nullopt;
    const double i_total = -op.vsource_current[static_cast<std::size_t>(vdd_src)];
    if (!(i_total > 0.0)) return std::nullopt;
    const auto sweep = sim::solve_ac(c, op, sim::log_freq_grid(10.0, 1e6, 4));
    if (!sweep.ok) return std::nullopt;
    return std::vector<double>{i_total * 1e6, sim::dc_gain_db(sweep, out)};
  }

  std::vector<double> expert_design() const override {
    return {0.5, 0.5, 0.5, 0.5};
  }

 private:
  ckt::Pdk pdk_;
  ckt::DesignSpace space_;
  std::vector<ckt::MetricSpec> specs_;
};

}  // namespace

int main() {
  CascodeStage circuit;
  std::cout << "Optimizing " << circuit.name() << ": minimize current s.t. "
            << "gain > 25 dB\n";

  KatoOptimizer optimizer(circuit);
  optimizer.config().n_init = 40;
  optimizer.config().iterations = 8;
  const auto result = optimizer.optimize(/*seed=*/2);

  if (result.best_metrics.empty()) {
    std::cout << "No feasible design found.\n";
    return 1;
  }
  const auto physical = circuit.space().to_physical(result.best_x);
  std::cout << "Best: Itotal = " << result.best_metrics[0]
            << " uA at gain = " << result.best_metrics[1] << " dB\n"
            << "  W = " << physical[0] * 1e6 << " um, L = " << physical[1] * 1e6
            << " um, Ib = " << physical[2] * 1e6 << " uA, Rl = "
            << physical[3] / 1e3 << " kOhm\n";
  return 0;
}
